#ifndef FMMSW_BENCH_BENCH_UTIL_H_
#define FMMSW_BENCH_BENCH_UTIL_H_

/// \file
/// Shared helpers for the table/figure reproduction binaries: uniform
/// "paper=... ours=..." rows (consumed by EXPERIMENTS.md), log-log slope
/// fitting for runtime shape checks, and a --json mode that emits one
/// machine-readable line per measurement for BENCH_*.json trajectories.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/exec_context.h"
#include "util/stopwatch.h"

namespace fmmsw {
namespace bench {

/// Set by Init when the binary is invoked with --json.
inline bool json_mode = false;

/// Upper bound on the per-step instance size N; sweep loops skip larger
/// steps. Set with --max-n <N> (CI runs the benches at a small fixed N to
/// record BENCH_*.json trajectories without paying full-sweep time).
inline long long max_n = (1LL << 62);

/// Parses shared benchmark flags (call at the top of main).
inline void Init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_mode = true;
    if (std::strcmp(argv[i], "--max-n") == 0 && i + 1 < argc) {
      max_n = std::atoll(argv[++i]);
    }
  }
}

/// True if a sweep step of size n should run under the --max-n cap.
inline bool StepEnabled(long long n) { return n <= max_n; }

/// One machine-readable measurement line:
///   {"name":"triangle","n":242323,"kernel":"wcoj","wall_ms":293.1,
///    "index_build_ms":12.4,"sort_ms":3.1}
/// index_build_ms (aggregate flat-index construction time, from the
/// ExecStats::index_build_ns delta) and sort_ms (aggregate wide-key
/// sort-layer time, from the ExecStats::sort_ns delta) are each summed
/// across workers, so they can exceed wall_ms when the phases run
/// concurrently inside parallel regions; each is emitted when the caller
/// passes a non-negative value. `extra`, when non-empty, is a raw JSON
/// fragment (e.g. "\"lps_solved\":12") spliced in before the closing
/// brace — the planner benches use it for LP counters. Emitted only in
/// --json mode; human-readable output stays as-is, so consumers should
/// filter for lines starting with '{'.
inline void Json(const std::string& name, long long n,
                 const std::string& kernel, double wall_ms,
                 double index_build_ms = -1.0, double sort_ms = -1.0,
                 const std::string& extra = "") {
  if (!json_mode) return;
  std::string line = "{\"name\":\"" + name + "\",\"n\":" + std::to_string(n) +
                     ",\"kernel\":\"" + kernel + "\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"wall_ms\":%.6f", wall_ms);
  line += buf;
  if (index_build_ms >= 0) {
    std::snprintf(buf, sizeof(buf), ",\"index_build_ms\":%.6f",
                  index_build_ms);
    line += buf;
  }
  if (sort_ms >= 0) {
    std::snprintf(buf, sizeof(buf), ",\"sort_ms\":%.6f", sort_ms);
    line += buf;
  }
  if (!extra.empty()) line += "," + extra;
  std::printf("%s}\n", line.c_str());
}

/// Times `reps` runs of f against `ec`, returning mean wall seconds and
/// storing the mean per-rep aggregate phase milliseconds (the context's
/// index_build_ns / sort_ns deltas; see Json above for the
/// summed-across-workers caveat) in the non-null out-params — how the
/// per-phase index-construction and sort-layer times are split out of the
/// end-to-end numbers.
inline double TimeWithPhases(ExecContext& ec, const std::function<bool()>& f,
                             int reps, double* index_build_ms,
                             double* sort_ms = nullptr) {
  const int64_t ns0 = ec.stats().index_build_ns.load();
  const int64_t sort0 = ec.stats().sort_ns.load();
  Stopwatch sw;
  bool sink = false;
  for (int i = 0; i < reps; ++i) sink ^= f();
  (void)sink;
  const double wall = sw.Seconds() / reps;
  if (index_build_ms != nullptr) {
    *index_build_ms =
        static_cast<double>(ec.stats().index_build_ns.load() - ns0) * 1e-6 /
        reps;
  }
  if (sort_ms != nullptr) {
    *sort_ms =
        static_cast<double>(ec.stats().sort_ns.load() - sort0) * 1e-6 / reps;
  }
  return wall;
}

/// Back-compat alias: phase timing with only the index-build split.
inline double TimeWithIndexBuild(ExecContext& ec,
                                 const std::function<bool()>& f, int reps,
                                 double* index_build_ms) {
  return TimeWithPhases(ec, f, reps, index_build_ms);
}

inline void Header(const std::string& title) {
  std::printf("==== %s ====\n", title.c_str());
}

inline void Row(const std::string& label, const std::string& paper,
                const std::string& ours, const std::string& note = "") {
  std::printf("%-34s paper=%-18s ours=%-18s %s\n", label.c_str(),
              paper.c_str(), ours.c_str(), note.c_str());
}

inline std::string Fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

/// Least-squares slope of log(time) vs log(n) — the measured exponent.
inline double FitSlope(const std::vector<double>& ns,
                       const std::vector<double>& ts) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const int n = static_cast<int>(ns.size());
  for (int i = 0; i < n; ++i) {
    const double x = std::log(ns[i]), y = std::log(ts[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace bench
}  // namespace fmmsw

#endif  // FMMSW_BENCH_BENCH_UTIL_H_
