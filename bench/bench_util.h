#ifndef FMMSW_BENCH_BENCH_UTIL_H_
#define FMMSW_BENCH_BENCH_UTIL_H_

/// \file
/// Shared helpers for the table/figure reproduction binaries: uniform
/// "paper=... ours=..." rows (consumed by EXPERIMENTS.md) and log-log
/// slope fitting for runtime shape checks.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace fmmsw {
namespace bench {

inline void Header(const std::string& title) {
  std::printf("==== %s ====\n", title.c_str());
}

inline void Row(const std::string& label, const std::string& paper,
                const std::string& ours, const std::string& note = "") {
  std::printf("%-34s paper=%-18s ours=%-18s %s\n", label.c_str(),
              paper.c_str(), ours.c_str(), note.c_str());
}

inline std::string Fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

/// Least-squares slope of log(time) vs log(n) — the measured exponent.
inline double FitSlope(const std::vector<double>& ns,
                       const std::vector<double>& ts) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const int n = static_cast<int>(ns.size());
  for (int i = 0; i < n; ++i) {
    const double x = std::log(ns[i]), y = std::log(ts[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace bench
}  // namespace fmmsw

#endif  // FMMSW_BENCH_BENCH_UTIL_H_
