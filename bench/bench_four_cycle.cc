// E5 — 4-cycle runtime shape: the O(N^2) single-TD plan vs the
// degree-partitioned O(N^{3/2}) combinatorial algorithm vs the MM hybrid
// (~N^{(4w-1)/(2w+1)}). The paper's Section 1.1 story: partitioning beats
// any single TD; MM improves the partitioned algorithm further.

#include <cmath>
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "engine/four_cycle.h"
#include "relation/generators.h"
#include "util/stopwatch.h"

namespace fmmsw {
namespace {

void Run() {
  bench::Header(
      "4-cycle detection: runtime shape (star + dense-square, cycle-free)");
  ExecContext ec;
  std::vector<double> ns, ns_td, t_td, t_comb, t_mm;
  std::printf("%10s %12s %12s %12s\n", "N", "td O(N^2)", "partitioned",
              "mm hybrid");
  for (int64_t n : {1000, 2000, 4000, 8000, 16000, 32000}) {
    if (!bench::StepEnabled(n)) continue;
    // Hard composite instance (Section 1.1.1's motivation for data
    // partitioning): half of R and S share a single super-heavy y* (their
    // join alone is ~(N/4)^2 — the fhtw plan's downfall), half lives on a
    // sqrt(N) dense square (real work for the light side); T, U mirror
    // this on w*. X is odd in R and even in U, so no cycle ever closes.
    const int64_t d = std::max<int64_t>(
        4, static_cast<int64_t>(std::sqrt(static_cast<double>(n))));
    Rng rng(23);
    auto side = [&](VarSet schema, int star_col, Value star_value,
                    bool odd_x, bool even_x) {
      Relation out(schema);
      for (int64_t i = 0; i < n / 2; ++i) {  // star half
        Value a = static_cast<Value>(rng.Uniform(0, d - 1));
        Value pair[2];
        pair[star_col] = star_value;
        pair[1 - star_col] = a;
        if (odd_x) pair[0] = 2 * pair[0] + 1;
        if (even_x) pair[0] = 2 * pair[0];
        out.Add({pair[0], pair[1]});
      }
      for (int64_t i = 0; i < n / 2; ++i) {  // dense-square half
        Value a = static_cast<Value>(rng.Uniform(0, d - 1));
        Value b = static_cast<Value>(rng.Uniform(0, d - 1));
        Value pair[2] = {a, b};
        if (odd_x) pair[0] = 2 * pair[0] + 1;
        if (even_x) pair[0] = 2 * pair[0];
        out.Add({pair[0], pair[1]});
      }
      out.SortAndDedupe();
      return out;
    };
    const Value star_y = static_cast<Value>(d + 1);
    const Value star_w = static_cast<Value>(d + 2);
    QueryInput db;
    // R(X,Y): star on y*, odd X. S(Y,Z): star on y*.
    db.relations.push_back(side(VarSet{0, 1}, 1, star_y, true, false));
    db.relations.push_back(side(VarSet{1, 2}, 0, star_y, false, false));
    // T(Z,W): star on w*. U(W,X): star on w*, even X.
    db.relations.push_back(side(VarSet{2, 3}, 1, star_w, false, false));
    db.relations.push_back(side(VarSet{0, 3}, 1, star_w, false, true));
    const int reps = n <= 4000 ? 3 : 1;
    // The quadratic TD plan materializes R join S; cap its sweep so the
    // bench stays within laptop memory (its slope is fitted on the prefix).
    const bool run_td = n <= 4000;
    double a_ib = -1.0, b_ib, c_ib;
    const double a =
        run_td ? bench::TimeWithIndexBuild(
                     ec, [&] { return FourCycleTd(db, &ec); }, reps, &a_ib)
               : -1.0;
    const double b = bench::TimeWithIndexBuild(
        ec, [&] { return FourCycleCombinatorial(db, nullptr, &ec); }, reps,
        &b_ib);
    const double c = bench::TimeWithIndexBuild(
        ec,
        [&] {
          return FourCycleMm(db, 2.371552, MmKernel::kBoolean, nullptr,
                             &ec);
        },
        reps, &c_ib);
    ns.push_back(static_cast<double>(db.TotalSize()));
    if (run_td) {
      ns_td.push_back(static_cast<double>(db.TotalSize()));
      t_td.push_back(a);
    }
    t_comb.push_back(b);
    t_mm.push_back(c);
    const long long total = static_cast<long long>(db.TotalSize());
    std::printf("%10lld %12.5f %12.5f %12.5f\n", total, a, b, c);
    if (run_td) bench::Json("four_cycle", total, "td", a * 1e3, a_ib);
    bench::Json("four_cycle", total, "partitioned", b * 1e3, b_ib);
    bench::Json("four_cycle", total, "mm_w2.37", c * 1e3, c_ib);
  }
  std::printf("\n");
  bench::Row("single-TD exponent", "2.0000",
             bench::Fmt(bench::FitSlope(ns_td, t_td)), "fitted; fhtw = 2");
  bench::Row("partitioned exponent", "1.5000",
             bench::Fmt(bench::FitSlope(ns, t_comb)), "fitted; subw = 3/2");
  bench::Row("MM hybrid exponent (w=2.3716)", "1.4776",
             bench::Fmt(bench::FitSlope(ns, t_mm)),
             "fitted; 2 - 3/(2w+1)");
}

}  // namespace
}  // namespace fmmsw

int main(int argc, char** argv) {
  fmmsw::bench::Init(argc, argv);
  fmmsw::Run();
  return 0;
}
