// E1 — Table 1: best prior vs our framework's complexity exponents for
// every query class, at several MM exponents. All values are computed from
// the library's closed forms / width calculator, not hard-coded strings.

#include <cstdio>

#include "bench_util.h"
#include "hypergraph/hypergraph.h"
#include "util/rational.h"
#include "width/closed_forms.h"
#include "width/cycle_dp.h"
#include "width/omega_subw.h"

namespace fmmsw {
namespace {

namespace cf = closed_forms;

// The planner counters for the LP-computed rows: how many simplex
// solves the row cost, how many replayed a warm basis, and the plan
// wall time.
std::string Planner(const OmegaSubwResult& r) {
  char buf[112];
  std::snprintf(buf, sizeof(buf),
                "lps_solved=%ld lp_warm_starts=%ld plan_ms=%.2f", r.lps_solved,
                r.lp_warm_starts, static_cast<double>(r.plan_ns) * 1e-6);
  return buf;
}

void PrintForOmega(const Rational& omega) {
  const double w = omega.ToDouble();
  std::printf("\n-- omega = %s (~%.6f) --\n", omega.ToString().c_str(), w);
  bench::Row("arbitrary Q", "O(N^subw)", "O(N^{w-subw})",
             "w-subw <= subw (Prop 4.9)");
  // Triangle.
  const OmegaSubwResult tri = OmegaSubw(Hypergraph::Triangle(), omega);
  bench::Row("triangle", bench::Fmt(cf::OmegaSubwTriangle(omega).ToDouble()),
             bench::Fmt(tri.value.ToDouble()),
             "2w/(w+1), LP-computed  " + Planner(tri));
  // 4- and 5-clique.
  const OmegaSubwResult k4 = OmegaSubw(Hypergraph::Clique(4), omega);
  bench::Row("4-clique", bench::Fmt(cf::OmegaSubwClique4(omega).ToDouble()),
             bench::Fmt(k4.value.ToDouble()),
             "(w+1)/2, LP-computed  " + Planner(k4));
  const OmegaSubwResult k5 = OmegaSubw(Hypergraph::Clique(5), omega);
  bench::Row("5-clique", bench::Fmt(cf::OmegaSubwClique5(omega).ToDouble()),
             bench::Fmt(k5.value.ToDouble()),
             "w/2+1, LP-computed  " + Planner(k5));
  // k-clique for k >= 6: prior uses rectangular MM (reported through the
  // square-MM bound), ours is the Lemma C.8 closed form.
  for (int k = 6; k <= 8; ++k) {
    bench::Row("k-clique k=" + std::to_string(k),
               bench::Fmt(cf::PriorClique(k, omega).ToDouble()),
               bench::Fmt(cf::OmegaSubwClique(k, omega).ToDouble()),
               "equal at w=2");
  }
  // 4-cycle and k-cycles.
  bench::Row("4-cycle", bench::Fmt(cf::PriorCycle4(omega).ToDouble()),
             bench::Fmt(cf::OmegaSubwCycle4(omega).ToDouble()),
             "(4w-1)/(2w+1) vs 2-3/(2 min(w,5/2)+1)");
  for (int k = 5; k <= 6; ++k) {
    auto dp = CycleCsquare(k, w, 24);
    bench::Row("k-cycle k=" + std::to_string(k), "c_k [12]",
               bench::Fmt(dp.value), "our square-MM DP bound");
  }
  // Pyramids: prior is PANDA's 2 - 1/k; ours is the new algorithm.
  for (int k = 3; k <= 5; ++k) {
    bench::Row("k-pyramid k=" + std::to_string(k),
               bench::Fmt(cf::PriorPyramid(k).ToDouble()),
               bench::Fmt(cf::OmegaSubwPyramidUpper(k, omega).ToDouble()),
               k == 3 ? "exact (Lemma C.13)" : "upper bound (Lemma C.14)");
  }
}

}  // namespace
}  // namespace fmmsw

int main() {
  using fmmsw::Rational;
  fmmsw::bench::Header(
      "Table 1: prior vs our complexity exponents (computed)");
  for (const Rational& omega :
       {Rational(2), Rational(2371552, 1000000), Rational(2807355, 1000000),
        Rational(3)}) {
    fmmsw::PrintForOmega(omega);
  }
  return 0;
}
