// E6 — k-clique detection (Table 1 rows 2-5): combinatorial WCOJ
// (exponent k/2) vs the 3-group MM scheme (exponent
// ceil(k/3)/2 + ceil((k-1)/3)/2 + floor(k/3)/2 (w-2)) on dense
// small-domain instances — the regime where every value is heavy and MM
// dominates.

#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "engine/clique.h"
#include "relation/generators.h"
#include "util/stopwatch.h"
#include "width/closed_forms.h"

namespace fmmsw {
namespace {

void RunK(int k) {
  std::printf("\n-- k = %d --\n", k);
  ExecContext ec;
  std::vector<double> ns, t_comb, t_mm;
  std::printf("%10s %12s %12s %12s\n", "N", "wcoj", "mm boolean",
              "mm strassen");
  std::vector<int64_t> domains =
      k <= 4 ? std::vector<int64_t>{24, 36, 54, 80, 120}
             : std::vector<int64_t>{12, 18, 27, 40};
  for (int64_t d : domains) {
    WorkloadOptions opts;
    opts.kind = WorkloadKind::kDense;
    opts.domain = d;
    opts.dense_density = 0.9;
    opts.seed = 29;
    QueryInput db = MakeWorkload(Hypergraph::Clique(k), opts);
    {
      // Clique-free instance via a parity obstruction that only fires at
      // the *last* join level: every pair relation keeps even-sum pairs
      // (all clique vertices would share one parity) except R_{0,k-1},
      // which keeps odd-sum pairs — contradiction, so no clique exists,
      // yet both algorithms must do their full work before discovering it.
      auto filter = [](const Relation& r, int want_parity) {
        Relation out(r.schema());
        for (size_t i = 0; i < r.size(); ++i) {
          if (((r.Row(i)[0] + r.Row(i)[1]) & 1) == want_parity) {
            out.Add({r.Row(i)[0], r.Row(i)[1]});
          }
        }
        return out;
      };
      for (size_t e = 0; e < db.relations.size(); ++e) {
        // Edge (0, k-1) has index k-2 in Hypergraph::Clique's order.
        const int parity = (static_cast<int>(e) == k - 2) ? 1 : 0;
        db.relations.Set(e, filter(db.relations[e], parity));
      }
    }
    if (!bench::StepEnabled(static_cast<long long>(db.TotalSize()))) {
      continue;
    }
    const int reps = 2;
    double a_ib, b_ib, c_ib;
    const double a = bench::TimeWithIndexBuild(
        ec, [&] { return CliqueCombinatorial(k, db, &ec); }, reps, &a_ib);
    const double b = bench::TimeWithIndexBuild(
        ec,
        [&] {
          return CliqueMm(k, db, MmKernel::kBoolean, nullptr, &ec);
        },
        reps, &b_ib);
    const double c = bench::TimeWithIndexBuild(
        ec,
        [&] {
          return CliqueMm(k, db, MmKernel::kStrassen, nullptr, &ec);
        },
        reps, &c_ib);
    ns.push_back(static_cast<double>(db.TotalSize()));
    t_comb.push_back(a);
    t_mm.push_back(b);
    const long long total = static_cast<long long>(db.TotalSize());
    std::printf("%10lld %12.5f %12.5f %12.5f\n", total, a, b, c);
    const std::string name = "clique_k" + std::to_string(k);
    bench::Json(name, total, "wcoj", a * 1e3, a_ib);
    bench::Json(name, total, "mm_boolean", b * 1e3, b_ib);
    bench::Json(name, total, "mm_strassen", c * 1e3, c_ib);
  }
  const Rational omega(2371552, 1000000);
  bench::Row("combinatorial exponent",
             bench::Fmt(closed_forms::SubwClique(k).ToDouble()),
             bench::Fmt(bench::FitSlope(ns, t_comb)), "fitted vs k/2");
  bench::Row(
      "MM exponent",
      bench::Fmt(closed_forms::OmegaSubwClique(k, omega).ToDouble()),
      bench::Fmt(bench::FitSlope(ns, t_mm)), "fitted vs Lemma C.8 value");
}

}  // namespace
}  // namespace fmmsw

int main(int argc, char** argv) {
  fmmsw::bench::Init(argc, argv);
  fmmsw::bench::Header("k-clique detection: combinatorial vs MM (dense)");
  for (int k : {3, 4, 5, 6}) fmmsw::RunK(k);
  return 0;
}
