// E12 — ablations of the design choices DESIGN.md calls out:
//   (1) LP backend: double simplex vs exact rational (value agreement and
//       cost of exactness);
//   (2) MM off (omega = 3) vs on: w-subw collapses to subw (Prop. 4.10);
//   (3) branch-and-bound vs coordinate-ascent-only on the width search;
//   (4) MM kernel choice inside the triangle algorithm.

#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "engine/triangle.h"
#include "entropy/polymatroid.h"
#include "hypergraph/hypergraph.h"
#include "lp/simplex.h"
#include "relation/generators.h"
#include "util/stopwatch.h"
#include "width/omega_subw.h"
#include "width/subw.h"

namespace fmmsw {
namespace {

void LpBackendAblation() {
  bench::Header("Ablation 1: LP backend (double vs exact rational)");
  for (const Hypergraph& h : {Hypergraph::Triangle(), Hypergraph::Clique(4),
                              Hypergraph::Pyramid(3)}) {
    // Exact path (what the library does).
    Stopwatch sw;
    auto r = OmegaSubw(h, Rational(2371552, 1000000));
    const double exact_s = sw.Seconds();
    bench::Row(h.ToString().substr(0, 30), "exact rational",
               r.value.ToString(),
               bench::Fmt(exact_s) + " s, " + std::to_string(r.lps_solved) +
                   " LPs (double search + 1 exact certify)");
  }
}

void OmegaThreeCollapse() {
  std::printf("\n");
  bench::Header("Ablation 2: MM off (omega=3) — Prop. 4.10 collapse");
  for (const Hypergraph& h : {Hypergraph::Triangle(), Hypergraph::Clique(4),
                              Hypergraph::Pyramid(3),
                              Hypergraph::LemmaC15()}) {
    auto subw = SubmodularWidth(h);
    auto osubw = OmegaSubw(h, Rational(3));
    bench::Row(h.ToString().substr(0, 30), subw.value.ToString(),
               osubw.value.ToString(),
               subw.value == osubw.value ? "EQUAL" : "DIFFER");
  }
}

void SearchAblation() {
  std::printf("\n");
  bench::Header("Ablation 3: width search strategy (4-clique, w=2.3716)");
  const Rational omega(2371552, 1000000);
  {
    Stopwatch sw;
    OmegaSubwOptions full;
    full.full_enumeration = true;
    auto r = OmegaSubwClustered(Hypergraph::Clique(4), omega, full);
    bench::Row("full enumeration", "59049 LPs",
               std::to_string(r.lps_solved) + " LPs",
               bench::Fmt(sw.Seconds()) + " s");
  }
  {
    Stopwatch sw;
    auto r = OmegaSubwClustered(Hypergraph::Clique(4), omega);
    bench::Row("coord-ascent + B&B", "same value",
               std::to_string(r.lps_solved) + " LPs",
               bench::Fmt(sw.Seconds()) + " s");
  }
}

void KernelAblation() {
  std::printf("\n");
  bench::Header("Ablation 4: MM kernel inside the triangle hybrid");
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kZipf;
  opts.tuples_per_relation = 32000;
  opts.domain = 8000;
  opts.seed = 5;
  QueryInput db = MakeWorkload(Hypergraph::Triangle(), opts);
  auto time_it = [&](MmKernel kernel, double omega) {
    Stopwatch sw;
    bool sink = TriangleMm(db, omega, kernel);
    (void)sink;
    return sw.Seconds();
  };
  bench::Row("boolean bit-packed", "-",
             bench::Fmt(time_it(MmKernel::kBoolean, 2.371552)) + " s");
  bench::Row("strassen (w=log2 7)", "-",
             bench::Fmt(time_it(MmKernel::kStrassen, 2.8073549)) + " s");
  bench::Row("naive cubic", "-",
             bench::Fmt(time_it(MmKernel::kNaive, 3.0)) + " s");
}

}  // namespace
}  // namespace fmmsw

int main() {
  fmmsw::LpBackendAblation();
  fmmsw::OmegaThreeCollapse();
  fmmsw::SearchAblation();
  fmmsw::KernelAblation();
  return 0;
}
