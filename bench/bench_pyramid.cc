// E7 — 3-pyramid (the paper's *new algorithm* class, Lemma C.13):
// combinatorial join (PANDA exponent 2 - 1/k = 5/3) vs the
// MM(X2;X3;Y|X1) elimination (2 - 1/w < 5/3 for w < 3).

#include <cmath>
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "engine/pyramid.h"
#include "relation/generators.h"
#include "util/stopwatch.h"

namespace fmmsw {
namespace {

void Run() {
  bench::Header("3-pyramid: combinatorial vs MM elimination (heavy regime)");
  ExecContext ec;
  std::vector<double> ns, t_comb, t_mm;
  std::printf("%10s %12s %12s\n", "N", "wcoj", "mm w=2.37");
  for (int64_t n : {1000, 2000, 4000, 8000, 16000}) {
    if (!bench::StepEnabled(n)) continue;
    // Lemma C.13's heavy regime: apex degrees N/d ~ N^{0.6} exceed the
    // Delta = N^{1-1/w} threshold, so the MM elimination (case 3) carries
    // the work. X3 is odd in R3 and even in the base: pyramid-free, no
    // early exits.
    const int64_t d = std::max<int64_t>(
        4, static_cast<int64_t>(std::pow(static_cast<double>(n), 0.4)));
    Rng rng(37);
    QueryInput db;
    db.relations.push_back(UniformRelation(VarSet{0, 1}, n, d, &rng));
    db.relations.push_back(UniformRelation(VarSet{0, 2}, n, d, &rng));
    {
      Relation raw = UniformRelation(VarSet{0, 3}, n, d, &rng);
      Relation r3(VarSet{0, 3});
      for (size_t i = 0; i < raw.size(); ++i) {
        r3.Add({raw.Row(i)[0], 2 * raw.Row(i)[1] + 1});
      }
      db.relations.push_back(std::move(r3));
    }
    {
      Relation raw = UniformRelation(VarSet{1, 2, 3}, n, d, &rng);
      Relation base(VarSet{1, 2, 3});
      for (size_t i = 0; i < raw.size(); ++i) {
        base.Add({raw.Row(i)[0], raw.Row(i)[1], 2 * raw.Row(i)[2]});
      }
      db.relations.push_back(std::move(base));
    }
    const int reps = n <= 4000 ? 3 : 1;
    double a_ib, b_ib;
    const double a = bench::TimeWithIndexBuild(
        ec, [&] { return Pyramid3Combinatorial(db, &ec); }, reps, &a_ib);
    const double b = bench::TimeWithIndexBuild(
        ec,
        [&] {
          return Pyramid3Mm(db, 2.371552, MmKernel::kBoolean, nullptr, &ec);
        },
        reps, &b_ib);
    ns.push_back(static_cast<double>(db.TotalSize()));
    t_comb.push_back(a);
    t_mm.push_back(b);
    const long long total = static_cast<long long>(db.TotalSize());
    std::printf("%10lld %12.5f %12.5f\n", total, a, b);
    bench::Json("pyramid", total, "wcoj", a * 1e3, a_ib);
    bench::Json("pyramid", total, "mm_w2.37", b * 1e3, b_ib);
  }
  std::printf("\n");
  bench::Row("combinatorial exponent", "1.6667 (subw 5/3)",
             bench::Fmt(bench::FitSlope(ns, t_comb)), "fitted");
  bench::Row("MM exponent (w=2.3716)", "1.5783 (2 - 1/w)",
             bench::Fmt(bench::FitSlope(ns, t_mm)), "fitted");
}

}  // namespace
}  // namespace fmmsw

int main(int argc, char** argv) {
  fmmsw::bench::Init(argc, argv);
  fmmsw::Run();
  return 0;
}
