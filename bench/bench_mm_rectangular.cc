// E8 — rectangular MM via square blocking (Eq. 6): measured runtime of the
// blocked-Strassen kernel across (a, b, c) shapes vs the
// n^{w-square(a,b,c)} prediction at w = log2 7. Uses google-benchmark for
// the kernel timings plus a shape table on exit.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "mm/cost_model.h"
#include "mm/matrix.h"
#include "util/random.h"

namespace fmmsw {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      m.At(i, j) = rng->Uniform(-3, 3);
    }
  }
  return m;
}

void BM_Square(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a = RandomMatrix(n, n, &rng), b = RandomMatrix(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiplyStrassen(a, b));
  }
}
BENCHMARK(BM_Square)->Arg(128)->Arg(256)->Arg(512);

void BM_RectangularWide(benchmark::State& state) {
  // n^1 x n^{1/2} times n^{1/2} x n^1: w-square(1, 1/2, 1) at min 1/2.
  const int n = static_cast<int>(state.range(0));
  const int mid = static_cast<int>(std::sqrt(static_cast<double>(n)));
  Rng rng(2);
  Matrix a = RandomMatrix(n, mid, &rng), b = RandomMatrix(mid, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiplyRectangular(a, b));
  }
}
BENCHMARK(BM_RectangularWide)->Arg(256)->Arg(512)->Arg(1024);

void BM_Blocked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  Matrix a = RandomMatrix(n, n, &rng), b = RandomMatrix(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiplyBlocked(a, b));
  }
}
BENCHMARK(BM_Blocked)->Arg(128)->Arg(256)->Arg(512);

void BM_BooleanBit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  BitMatrix a(n, n), b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.Flip(0.3)) a.Set(i, j);
      if (rng.Flip(0.3)) b.Set(i, j);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BitMatrix::Multiply(a, b));
  }
}
BENCHMARK(BM_BooleanBit)->Arg(256)->Arg(512)->Arg(1024);

}  // namespace
}  // namespace fmmsw

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Shape table: predicted block count * d^w vs Eq. (6) exponent.
  using fmmsw::bench::Fmt;
  fmmsw::bench::Header("Eq. (6): w-square(a,b,c) predictions at w = log2 7");
  const double w = std::log2(7.0);
  struct Shape {
    double a, b, c;
  };
  for (const Shape& s : {Shape{1, 1, 1}, Shape{1, 0.5, 1}, Shape{1, 1, 0.5},
                         Shape{0.5, 1, 0.5}}) {
    const double pred = fmmsw::OmegaSquareExponent(s.a, s.b, s.c, w);
    std::printf("(a,b,c)=(%.1f,%.1f,%.1f)  paper=a+b+c-(3-w)min  ours=%s\n",
                s.a, s.b, s.c, Fmt(pred).c_str());
  }
  return 0;
}
