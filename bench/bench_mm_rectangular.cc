// E8 — the MM kernel substrate: measured runtime of the int64 kernels
// (micro-kernel blocked product at both SIMD levels, Strassen, the Eq. (6)
// rectangular square-blocking scheme), the bit-sliced 0/1 counting
// product, and the bit-packed Boolean product, across an n-sweep; plus the
// n^{w-square(a,b,c)} shape table at w = log2 7. Every timed kernel is
// verified against MultiplyNaive once per size before timing.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/exec_context.h"
#include "mm/cost_model.h"
#include "mm/kernel.h"
#include "mm/matrix.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace fmmsw {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng, int64_t lo = -3,
                    int64_t hi = 3) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m.At(i, j) = rng->Uniform(lo, hi);
  }
  return m;
}

Matrix RandomIndicator(int rows, int cols, double density, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (rng->Flip(density)) m.At(i, j) = 1;
    }
  }
  return m;
}

double TimeKernel(const std::function<Matrix()>& f, int reps,
                  const Matrix& expect) {
  FMMSW_CHECK(f() == expect);  // verify once, untimed
  Stopwatch sw;
  for (int i = 0; i < reps; ++i) {
    Matrix m = f();
    if (m.rows() < 0) std::abort();  // keep the product alive
  }
  return sw.Seconds() / reps;
}

void Run() {
  bench::Header("MM kernels: micro-kernel / Strassen / rectangular / "
                "bit-sliced (verified vs naive)");
  ExecContext ec;
  std::printf("active SIMD level: %s (FMMSW_SIMD overrides)\n",
              SimdLevelName(ActiveSimdLevel()));
  std::printf("%6s %12s %12s %12s %12s %12s %12s\n", "n", "gemm_scalar",
              "gemm_simd", "strassen", "rect_wide", "bitsliced",
              "bitmatrix");
  for (int n : {128, 256, 512}) {
    if (!bench::StepEnabled(n)) continue;
    const int reps = n <= 256 ? 5 : 2;
    Rng rng(17);
    Matrix a = RandomMatrix(n, n, &rng), b = RandomMatrix(n, n, &rng);
    const Matrix ref = MultiplyNaive(a, b);

    // Micro-kernel base case at each level (the whole product as one
    // panel call — the shape the Strassen cutoff and rectangular blocks
    // see, scaled up). Scratch hoisted out of the timed lambda like
    // production callers, which reuse caller scratch or a worker arena.
    MmPackScratch pack;
    auto gemm_at = [&](SimdLevel level) {
      Matrix out(n, n);
      GemmAddAt(level, a.RowPtr(0), n, b.RowPtr(0), n, out.RowPtr(0), n, n,
                n, n, &ec, &pack);
      return out;
    };
    const double t_scalar =
        TimeKernel([&] { return gemm_at(SimdLevel::kScalar); }, reps, ref);
    double t_simd = -1.0;
    if (MaxSimdLevel() != SimdLevel::kScalar) {
      t_simd =
          TimeKernel([&] { return gemm_at(SimdLevel::kAvx2); }, reps, ref);
    }
    // Sub-n cutoff so the strassen column always exercises the recursion
    // (AddInto/Accumulate + pow2 embedding); with the production default
    // of kMmDefaultCutoff the n <= 256 sizes would collapse to a single
    // micro-kernel call and duplicate the gemm columns.
    const double t_strassen = TimeKernel(
        [&] { return MultiplyStrassen(a, b, 64, &ec); }, reps, ref);

    // Rectangular n x sqrt(n) x n — the Eq. (6) wide shape.
    const int mid = static_cast<int>(std::sqrt(static_cast<double>(n)));
    Matrix wa = RandomMatrix(n, mid, &rng), wb = RandomMatrix(mid, n, &rng);
    const Matrix wref = MultiplyNaive(wa, wb);
    const double t_rect = TimeKernel(
        [&] { return MultiplyRectangular(wa, wb, kMmDefaultCutoff, &ec); },
        reps, wref);

    // 0/1 counting product: bit-sliced vs the same product through the
    // int64 micro-kernel path (the cost it removes). The mm_pack_ns delta
    // splits out the bit-plane packing time (blocked transpose for B).
    Matrix ia = RandomIndicator(n, n, 0.3, &rng);
    Matrix ib = RandomIndicator(n, n, 0.3, &rng);
    const Matrix iref = MultiplyNaive(ia, ib);
    const int64_t pack0 = ec.stats().mm_pack_ns.load();
    const double t_bits = TimeKernel(
        [&] { return MultiplyBitSliced(ia, ib, &ec); }, reps, iref);
    const double t_bits_pack =
        static_cast<double>(ec.stats().mm_pack_ns.load() - pack0) * 1e-9 /
        (reps + 1);  // TimeKernel runs one extra verification call
    BitMatrix ba(n, n), bb(n, n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (ia.At(i, j) != 0) ba.Set(i, j);
        if (ib.At(i, j) != 0) bb.Set(i, j);
      }
    }
    Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      BitMatrix bm = BitMatrix::Multiply(ba, bb, &ec);
      if (bm.rows() < 0) std::abort();
    }
    const double t_bool = sw.Seconds() / reps;

    char simd_col[16];
    if (t_simd >= 0) {
      std::snprintf(simd_col, sizeof(simd_col), "%12.5f", t_simd);
    } else {
      std::snprintf(simd_col, sizeof(simd_col), "%12s", "n/a");
    }
    std::printf("%6d %12.5f %s %12.5f %12.5f %12.5f %12.5f\n", n, t_scalar,
                simd_col, t_strassen, t_rect, t_bits, t_bool);
    bench::Json("mm", n, "gemm_scalar", t_scalar * 1e3);
    if (t_simd >= 0) bench::Json("mm", n, "gemm_simd", t_simd * 1e3);
    bench::Json("mm", n, "strassen", t_strassen * 1e3);
    bench::Json("mm", n, "rect_wide", t_rect * 1e3);
    bench::Json("mm", n, "bitsliced", t_bits * 1e3);
    bench::Json("mm", n, "bitsliced_pack", t_bits_pack * 1e3);
    bench::Json("mm", n, "bitmatrix", t_bool * 1e3);
  }

  // Pack-focused sweep at sizes where the B planes outgrow cache — the
  // regime the blocked transpose pack targets. Verified against the
  // micro-kernel blocked product (itself differentially tested vs naive)
  // so the largest size stays affordable.
  bench::Header("bit-sliced pack (blocked transpose) at larger n");
  for (int n : {1024, 2048}) {
    if (!bench::StepEnabled(n)) continue;
    Rng rng(23);
    Matrix ia = RandomIndicator(n, n, 0.3, &rng);
    Matrix ib = RandomIndicator(n, n, 0.3, &rng);
    const Matrix ref = MultiplyBlocked(ia, ib, &ec);
    const int reps = 2;
    const int64_t pack0 = ec.stats().mm_pack_ns.load();
    const double t = TimeKernel(
        [&] { return MultiplyBitSliced(ia, ib, &ec); }, reps, ref);
    const double t_pack =
        static_cast<double>(ec.stats().mm_pack_ns.load() - pack0) * 1e-9 /
        (reps + 1);
    std::printf("%6d bitsliced %10.5fs  pack %10.5fs\n", n, t, t_pack);
    bench::Json("mm", n, "bitsliced_large", t * 1e3);
    bench::Json("mm", n, "bitsliced_large_pack", t_pack * 1e3);
  }

  // Shape table: predicted block count * d^w vs Eq. (6) exponent.
  bench::Header("Eq. (6): w-square(a,b,c) predictions at w = log2 7");
  const double w = std::log2(7.0);
  struct Shape {
    double a, b, c;
  };
  for (const Shape& s : {Shape{1, 1, 1}, Shape{1, 0.5, 1}, Shape{1, 1, 0.5},
                         Shape{0.5, 1, 0.5}}) {
    const double pred = OmegaSquareExponent(s.a, s.b, s.c, w);
    std::printf("(a,b,c)=(%.1f,%.1f,%.1f)  paper=a+b+c-(3-w)min  ours=%s\n",
                s.a, s.b, s.c, bench::Fmt(pred).c_str());
  }
}

}  // namespace
}  // namespace fmmsw

int main(int argc, char** argv) {
  fmmsw::bench::Init(argc, argv);
  fmmsw::Run();
  return 0;
}
