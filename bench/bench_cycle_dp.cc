// E10 — the k-cycle exponent DP (Eq. 45-46, Table 2 row "k-cycle"):
// our square-MM upper bound on the cycle-detection exponent for
// k = 4..8 across omegas, against subw(C_k) = 2 - 1/ceil(k/2) (the
// combinatorial ceiling) and the 4-cycle closed form.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "width/closed_forms.h"
#include "width/cycle_dp.h"

int main() {
  using namespace fmmsw;
  bench::Header("k-cycle exponents: square-MM DP bound vs subw ceiling");
  std::printf("%6s %10s %12s %12s %12s\n", "k", "omega", "dp bound",
              "subw(C_k)", "note");
  for (int k = 4; k <= 8; ++k) {
    for (double omega : {2.0, 2.371552, 2.8073549, 3.0}) {
      auto r = CycleCsquare(k, omega, k <= 6 ? 32 : 20);
      const double subw = closed_forms::SubwCycle(k).ToDouble();
      std::string note;
      if (k == 4) {
        const double closed =
            closed_forms::OmegaSubwCycle4(
                Rational(static_cast<int64_t>(omega * 1000000), 1000000))
                .ToDouble();
        note = "closed form " + bench::Fmt(closed);
      }
      std::printf("%6d %10.4f %12.4f %12.4f %12s\n", k, omega, r.value,
                  subw, note.c_str());
    }
  }
  bench::Row("shape check", "dp <= subw, monotone in omega", "see table");
  return 0;
}
