// E4 — triangle runtime shape: combinatorial WCOJ (N^{3/2}) vs the
// Figure-1 MM hybrid at several omegas, over an N-sweep of triangle-free
// dense-square instances (every value heavy — the Lemma C.5 hard regime).
// Reports fitted log-log exponents; expect the MM hybrid's fit at or below
// the combinatorial one, with predicted exponents 2w/(w+1) vs 1.5.

#include <cmath>
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "core/api.h"
#include "core/database.h"
#include "engine/triangle.h"
#include "engine/wcoj.h"
#include "panda/executor.h"
#include "relation/generators.h"
#include "util/stopwatch.h"

namespace fmmsw {
namespace {


/// The hard regime of Lemma C.5's witness: all three variables live on a
/// domain of size ~sqrt(N), so every value is heavy (degree ~sqrt(N)) and
/// the worst-case-optimal join must do N^{3/2} intersection work while the
/// MM hybrid multiplies sqrt(N)-square matrices. Z is remapped to even
/// values in S and odd values in T, so no triangle ever closes — every
/// algorithm does its full work and the fitted slope is the exponent.
QueryInput MakeNegativeInstance(int64_t n) {
  const int64_t d = std::max<int64_t>(
      4, static_cast<int64_t>(std::sqrt(static_cast<double>(n))));
  Rng rng(19);
  QueryInput db;
  db.relations.push_back(UniformRelation(VarSet{0, 1}, n, d, &rng));
  Relation raw_s = UniformRelation(VarSet{1, 2}, n, d, &rng);
  Relation raw_t = UniformRelation(VarSet{0, 2}, n, d, &rng);
  Relation s(VarSet{1, 2}), t(VarSet{0, 2});
  for (size_t i = 0; i < raw_s.size(); ++i) {
    s.Add({raw_s.Row(i)[0], 2 * raw_s.Row(i)[1]});
  }
  for (size_t i = 0; i < raw_t.size(); ++i) {
    t.Add({raw_t.Row(i)[0], 2 * raw_t.Row(i)[1] + 1});
  }
  db.relations.push_back(std::move(s));
  db.relations.push_back(std::move(t));
  return db;
}

void Run() {
  bench::Header(
      "Triangle detection: runtime shape (dense-square, triangle-free)");
  std::vector<double> ns, t_wcoj, t_mm2, t_mmstr, t_panda;
  std::printf("%10s %12s %12s %12s %12s\n", "N", "wcoj(s)", "mm w=2.37",
              "mm strassen", "panda-derived");
  ExecContext ec;
  for (int64_t n : {4000, 8000, 16000, 32000, 64000, 128000}) {
    if (!bench::StepEnabled(n)) continue;
    QueryInput db = MakeNegativeInstance(n);
    const int reps = n <= 8000 ? 3 : 1;
    double a_ib, b_ib, c_ib, d_ib;
    double a_sort, b_sort, c_sort, d_sort;
    const double a = bench::TimeWithPhases(
        ec, [&] { return TriangleCombinatorial(db, &ec); }, reps, &a_ib,
        &a_sort);
    const double b = bench::TimeWithPhases(
        ec,
        [&] {
          return TriangleMm(db, 2.371552, MmKernel::kBoolean, nullptr, &ec);
        },
        reps, &b_ib, &b_sort);
    const double c = bench::TimeWithPhases(
        ec,
        [&] {
          return TriangleMm(db, 2.8073549, MmKernel::kStrassen, nullptr,
                            &ec);
        },
        reps, &c_ib, &c_sort);
    const double d = bench::TimeWithPhases(
        ec,
        [&] {
          return PandaTriangleBoolean(db, 2.371552, MmKernel::kBoolean,
                                      nullptr, &ec);
        },
        reps, &d_ib, &d_sort);
    ns.push_back(static_cast<double>(db.TotalSize()));
    t_wcoj.push_back(a);
    t_mm2.push_back(b);
    t_mmstr.push_back(c);
    t_panda.push_back(d);
    const long long total = static_cast<long long>(db.TotalSize());
    std::printf("%10lld %12.5f %12.5f %12.5f %12.5f\n", total, a, b, c, d);
    bench::Json("triangle", total, "wcoj", a * 1e3, a_ib, a_sort);
    bench::Json("triangle", total, "mm_w2.37", b * 1e3, b_ib, b_sort);
    bench::Json("triangle", total, "mm_strassen", c * 1e3, c_ib, c_sort);
    bench::Json("triangle", total, "panda", d * 1e3, d_ib, d_sort);
  }
  std::printf("\n");
  bench::Row("combinatorial exponent", "1.5000",
             bench::Fmt(bench::FitSlope(ns, t_wcoj)), "fitted");
  bench::Row("MM hybrid exponent (w=2.3716)", "1.4068",
             bench::Fmt(bench::FitSlope(ns, t_mm2)),
             "fitted; 2w/(w+1)");
  bench::Row("MM hybrid exponent (Strassen)", "1.4750",
             bench::Fmt(bench::FitSlope(ns, t_mmstr)),
             "fitted; 2w/(w+1) at w=log2 7");
  bench::Row("proof-seq-derived exponent", "1.4068",
             bench::Fmt(bench::FitSlope(ns, t_panda)), "fitted");
}

/// Guardrail A/B at the largest enabled N of the sweep: the same WCOJ
/// evaluation unguarded (every Poll() is one relaxed load) vs armed with
/// generous limits (every poll takes the slow path) — the armed delta
/// bounds what guarded production runs pay. Then deadline- and
/// memory-bounded runs of the same instance, showing early termination
/// with the matching status.
void RunGuardrails() {
  bench::Header("Execution guardrails (same instance, largest enabled N)");
  const Hypergraph h = Hypergraph::Triangle();
  int64_t n = 0;
  for (int64_t step : {4000, 8000, 16000, 32000, 64000, 128000}) {
    if (bench::StepEnabled(step)) n = step;
  }
  if (n == 0) return;
  QueryInput db = MakeNegativeInstance(n);
  const long long total = static_cast<long long>(db.TotalSize());
  ExecContext ec;
  const int reps = n <= 32000 ? 9 : 3;
  QueryLimits generous;
  generous.deadline_ms = 3600 * 1000;
  generous.memory_budget_bytes = int64_t{1} << 40;
  // Warm-up (arena growth, index caches) outside the timed pairs, then
  // interleave A/B reps and keep the per-variant minimum: back-to-back
  // block timing is hopeless against scheduler drift at small N, while
  // min-of-k pairs cancels it.
  bool negative = !WcojBoolean(h, db, &ec);
  bool ans = false;
  double unguarded = 1e100, armed = 1e100;
  Stopwatch sw;
  for (int i = 0; i < reps; ++i) {
    sw.Reset();
    negative &= !WcojBoolean(h, db, &ec);
    unguarded = std::min(unguarded, sw.Seconds());
    sw.Reset();
    const ExecResult r = WcojBooleanGuarded(h, db, &ans, &ec, generous);
    armed = std::min(armed, sw.Seconds());
    negative &= r.ok() && !ans;
  }
  const double overhead = (armed - unguarded) / unguarded * 100.0;
  std::printf("  instance: negative=%d  N=%lld\n", negative ? 1 : 0, total);
  std::printf("  wcoj unguarded  : %10.5f s\n", unguarded);
  std::printf("  wcoj armed      : %10.5f s   (%+.2f%%, target < 2%%)\n",
              armed, overhead);
  bench::Json("triangle_guard", total, "unguarded", unguarded * 1e3);
  bench::Json("triangle_guard", total, "armed", armed * 1e3);
  // Deadline-bounded: a fraction of the full runtime must terminate the
  // query early with deadline_exceeded.
  QueryLimits tight_deadline;
  tight_deadline.deadline_ms = std::max<int64_t>(
      1, static_cast<int64_t>(unguarded * 1e3 * 0.2));
  sw.Reset();
  const ExecResult dl = WcojBooleanGuarded(h, db, &ans, &ec, tight_deadline);
  const double dl_wall = sw.Seconds();
  std::printf("  deadline %4lld ms: %10.5f s   status=%s\n",
              static_cast<long long>(tight_deadline.deadline_ms), dl_wall,
              StatusString(dl.status));
  bench::Json("triangle_guard", total, "deadline_bounded", dl_wall * 1e3);
  // Memory-bounded: a budget far below the trie/index working set must
  // abort during the build phase.
  QueryLimits tight_mem;
  tight_mem.memory_budget_bytes = 64 * 1024;
  sw.Reset();
  const ExecResult mb = WcojBooleanGuarded(h, db, &ans, &ec, tight_mem);
  const double mb_wall = sw.Seconds();
  std::printf("  mem budget 64KiB: %10.5f s   status=%s\n", mb_wall,
              StatusString(mb.status));
  bench::Json("triangle_guard", total, "memory_bounded", mb_wall * 1e3);
  bench::Row("armed-guard overhead", "<2%", bench::Fmt(overhead) + "%",
             "armed generous limits vs unguarded");
  bench::Row("deadline-bounded status", "deadline_exceeded",
             StatusString(dl.status),
             "20% of full runtime, early termination");
  bench::Row("memory-bounded status", "memory_limit_exceeded",
             StatusString(mb.status), "64KiB budget");
}

/// Recovery plane on the same instance: (1) the no-fault cost of running
/// through RunWithRecovery — guard armed, ladder machinery engaged, zero
/// retries — vs the same strategy called directly (target < 2%);
/// (2) a degradation demo: the memory-hungry MM count rung trips a
/// budget chosen between the two strategies' measured peaks and the
/// ladder falls through to WCOJ, with both timings reported.
void RunRecovery() {
  bench::Header("Recovery plane (same instance, largest enabled N)");
  const Hypergraph h = Hypergraph::Triangle();
  int64_t n = 0;
  for (int64_t step : {4000, 8000, 16000, 32000, 64000, 128000}) {
    if (bench::StepEnabled(step)) n = step;
  }
  if (n == 0) return;
  QueryInput db = MakeNegativeInstance(n);
  const long long total = static_cast<long long>(db.TotalSize());
  ExecContext ec;
  const int reps = n <= 32000 ? 9 : 5;

  // --- A/B: recovery-armed (no fault) vs unguarded, same strategy. ---
  bool ans = false;
  std::vector<PlanRung> wcoj_only;
  wcoj_only.push_back({"wcoj", [&h, &db, &ans](ExecContext& e) {
                         ans = WcojBoolean(h, db, &e);
                       }});
  bool negative = !WcojBoolean(h, db, &ec);  // warm-up
  double unguarded = 1e100, armed = 1e100;
  Stopwatch sw;
  for (int i = 0; i < reps; ++i) {
    sw.Reset();
    negative &= !WcojBoolean(h, db, &ec);
    unguarded = std::min(unguarded, sw.Seconds());
    sw.Reset();
    const ExecResult r = RunWithRecovery(ec, {}, {}, wcoj_only);
    armed = std::min(armed, sw.Seconds());
    negative &= r.ok() && !ans;
  }
  const double overhead = (armed - unguarded) / unguarded * 100.0;
  std::printf("  instance: negative=%d  N=%lld\n", negative ? 1 : 0, total);
  std::printf("  wcoj direct          : %10.5f s\n", unguarded);
  std::printf("  wcoj recovery-armed  : %10.5f s   (%+.2f%%, target < 2%%)\n",
              armed, overhead);
  bench::Json("triangle_recovery", total, "unguarded", unguarded * 1e3);
  bench::Json("triangle_recovery", total, "recovery_armed", armed * 1e3);
  bench::Row("recovery-armed overhead", "<2%", bench::Fmt(overhead) + "%",
             "RunWithRecovery, no fault, vs direct call");

  // --- Degradation demos. Two pressure sources: ---
  // (a) a real memory budget between the measured Strassen and WCOJ
  //     peaks — the pow2-padded top rung trips it and the ladder settles
  //     on the hungriest strategy that fits (on this dense-square shape
  //     that is blocked GEMM, whose slab charges are tiny);
  // (b) the deterministic mm:1 fault plan — simulated memory pressure on
  //     the whole MM plane, so every MM rung aborts retryably and the
  //     ladder falls all the way to WCOJ.
  ec.stats().Reset();
  sw.Reset();
  const int64_t mm_count = TriangleCountMm(db, MmKernel::kStrassen, &ec);
  const double t_mm = sw.Seconds();
  const int64_t mm_peak = ec.stats().mem_peak_bytes.load();
  ec.stats().Reset();
  sw.Reset();
  const int64_t wcoj_count = WcojCount(h, db, &ec);
  const double t_wcoj = sw.Seconds();
  const int64_t wcoj_peak = ec.stats().mem_peak_bytes.load();
  std::printf("  mm count clean       : %10.5f s   peak %lld bytes\n", t_mm,
              static_cast<long long>(mm_peak));
  std::printf("  wcoj count clean     : %10.5f s   peak %lld bytes\n", t_wcoj,
              static_cast<long long>(wcoj_peak));
  bench::Json("triangle_recovery", total, "mm_clean", t_mm * 1e3);
  bench::Json("triangle_recovery", total, "wcoj_clean", t_wcoj * 1e3);
  if (mm_peak > wcoj_peak) {
    ec.stats().Reset();
    QueryLimits budgeted;
    budgeted.memory_budget_bytes = wcoj_peak + (mm_peak - wcoj_peak) / 2;
    int64_t budget_count = -1;
    RecoveryReport budget_report;
    sw.Reset();
    const ExecResult rb = EvaluateCountWithRecovery(
        h, db, &budget_count, &ec, budgeted, {}, &budget_report);
    const double t_budget = sw.Seconds();
    std::printf("  budget-degraded      : %10.5f s   status=%s rung=%s "
                "retries=%lld (budget between peaks)\n",
                t_budget, StatusString(rb.status),
                budget_report.winning_rung.c_str(),
                static_cast<long long>(ec.stats().retries.load()));
    bench::Json("triangle_recovery", total, "recovered_budget",
                t_budget * 1e3);
    bench::Row("budget-degraded status", "ok", StatusString(rb.status),
               "real budget between peaks, rung " + budget_report.winning_rung);
    bench::Row("budget-degraded count matches", "yes",
               budget_count == wcoj_count ? "yes" : "no",
               "recovered == clean wcoj count");
  } else {
    std::printf("  budget-degraded      : skipped (mm peak <= wcoj peak "
                "on this shape)\n");
  }
  ec.stats().Reset();
  FaultPlan plan;
  std::string plan_err;
  ParseFaultPlan("mm:1", &plan, &plan_err);
  ec.guard().SetFaultPlan(plan);
  int64_t recovered_count = -1;
  RecoveryReport report;
  sw.Reset();
  const ExecResult r =
      EvaluateCountWithRecovery(h, db, &recovered_count, &ec, {}, {}, &report);
  const double t_recovered = sw.Seconds();
  ec.guard().SetFaultPlan(FaultPlan{});
  std::printf("  mm-fault degraded    : %10.5f s   status=%s rung=%s "
              "retries=%lld (fault plan mm:1)\n",
              t_recovered, StatusString(r.status), report.winning_rung.c_str(),
              static_cast<long long>(ec.stats().retries.load()));
  bench::Json("triangle_recovery", total, "recovered_degraded",
              t_recovered * 1e3);
  bench::Row("degraded run status", "ok", StatusString(r.status),
             "MM rungs abort retryably, ladder falls to WCOJ");
  bench::Row("degraded winning rung", "wcoj", report.winning_rung,
             "answer bit-identical to clean WCOJ run");
  bench::Row("degraded count matches", "yes",
             recovered_count == wcoj_count && mm_count == wcoj_count ? "yes"
                                                                    : "no",
             "recovered == clean wcoj == clean mm");
}

/// Catalog service layer A/B at the largest enabled N: the same count
/// query routed through Database::QueryCount (snapshot pin + name
/// binding + admission ticket + recovery ladder) vs the identical
/// direct EvaluateCountWithRecovery call on a pre-bound QueryInput.
/// The delta is exactly what production pays per query for snapshot
/// isolation and admission control — target < 2%.
void RunService() {
  bench::Header("Catalog service layer (same instance, largest enabled N)");
  const Hypergraph h = Hypergraph::Triangle();
  int64_t n = 0;
  for (int64_t step : {4000, 8000, 16000, 32000, 64000, 128000}) {
    if (bench::StepEnabled(step)) n = step;
  }
  if (n == 0) return;
  QueryInput bound = MakeNegativeInstance(n);
  const long long total = static_cast<long long>(bound.TotalSize());
  ExecContext ec;
  Database db;
  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Replace("R", Relation(bound.relations[0]));
    txn.Replace("S", Relation(bound.relations[1]));
    txn.Replace("T", Relation(bound.relations[2]));
    txn.Commit();
  }
  const std::vector<std::string> atoms = {"R", "S", "T"};
  const int reps = n <= 32000 ? 9 : 5;
  QueryOptions opts;  // recovery on: both sides walk the same ladder

  int64_t direct_count = -1, routed_count = -2;
  bool agree = true;
  double direct = 1e100, routed = 1e100;
  // Warm-up outside the timed pairs, then interleave and keep per-variant
  // minima (same protocol as the guardrail A/B above).
  (void)EvaluateCountWithRecovery(h, bound, &direct_count, &ec, opts.limits,
                                  opts.retry);
  Stopwatch sw;
  for (int i = 0; i < reps; ++i) {
    sw.Reset();
    const ExecResult rd = EvaluateCountWithRecovery(
        h, bound, &direct_count, &ec, opts.limits, opts.retry);
    direct = std::min(direct, sw.Seconds());
    sw.Reset();
    Snapshot snap = db.snapshot(&ec);
    const ExecResult rr = db.QueryCount(snap, h, atoms, &routed_count, opts,
                                        &ec);
    routed = std::min(routed, sw.Seconds());
    agree &= rd.ok() && rr.ok() && direct_count == routed_count;
  }
  const double overhead = (routed - direct) / direct * 100.0;
  std::printf("  instance: N=%lld  counts agree=%d\n", total, agree ? 1 : 0);
  std::printf("  count direct         : %10.5f s\n", direct);
  std::printf("  count via Database   : %10.5f s   (%+.2f%%, target < 2%%)\n",
              routed, overhead);
  bench::Json("triangle_service", total, "direct", direct * 1e3);
  bench::Json("triangle_service", total, "routed", routed * 1e3);
  bench::Row("service-layer overhead", "<2%", bench::Fmt(overhead) + "%",
             "Database::QueryCount vs direct EvaluateCountWithRecovery");
  bench::Row("service count matches", "yes", agree ? "yes" : "no",
             "snapshot-bound == pre-bound input");
}

}  // namespace
}  // namespace fmmsw

int main(int argc, char** argv) {
  fmmsw::bench::Init(argc, argv);
  fmmsw::Run();
  fmmsw::RunGuardrails();
  fmmsw::RunRecovery();
  fmmsw::RunService();
  return 0;
}
