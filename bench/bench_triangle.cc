// E4 — triangle runtime shape: combinatorial WCOJ (N^{3/2}) vs the
// Figure-1 MM hybrid at several omegas, over an N-sweep of triangle-free
// dense-square instances (every value heavy — the Lemma C.5 hard regime).
// Reports fitted log-log exponents; expect the MM hybrid's fit at or below
// the combinatorial one, with predicted exponents 2w/(w+1) vs 1.5.

#include <cmath>
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "engine/triangle.h"
#include "panda/executor.h"
#include "relation/generators.h"
#include "util/stopwatch.h"

namespace fmmsw {
namespace {


/// The hard regime of Lemma C.5's witness: all three variables live on a
/// domain of size ~sqrt(N), so every value is heavy (degree ~sqrt(N)) and
/// the worst-case-optimal join must do N^{3/2} intersection work while the
/// MM hybrid multiplies sqrt(N)-square matrices. Z is remapped to even
/// values in S and odd values in T, so no triangle ever closes — every
/// algorithm does its full work and the fitted slope is the exponent.
Database MakeNegativeInstance(int64_t n) {
  const int64_t d = std::max<int64_t>(
      4, static_cast<int64_t>(std::sqrt(static_cast<double>(n))));
  Rng rng(19);
  Database db;
  db.relations.push_back(UniformRelation(VarSet{0, 1}, n, d, &rng));
  Relation raw_s = UniformRelation(VarSet{1, 2}, n, d, &rng);
  Relation raw_t = UniformRelation(VarSet{0, 2}, n, d, &rng);
  Relation s(VarSet{1, 2}), t(VarSet{0, 2});
  for (size_t i = 0; i < raw_s.size(); ++i) {
    s.Add({raw_s.Row(i)[0], 2 * raw_s.Row(i)[1]});
  }
  for (size_t i = 0; i < raw_t.size(); ++i) {
    t.Add({raw_t.Row(i)[0], 2 * raw_t.Row(i)[1] + 1});
  }
  db.relations.push_back(std::move(s));
  db.relations.push_back(std::move(t));
  return db;
}

void Run() {
  bench::Header(
      "Triangle detection: runtime shape (dense-square, triangle-free)");
  std::vector<double> ns, t_wcoj, t_mm2, t_mmstr, t_panda;
  std::printf("%10s %12s %12s %12s %12s\n", "N", "wcoj(s)", "mm w=2.37",
              "mm strassen", "panda-derived");
  ExecContext ec;
  for (int64_t n : {4000, 8000, 16000, 32000, 64000, 128000}) {
    if (!bench::StepEnabled(n)) continue;
    Database db = MakeNegativeInstance(n);
    const int reps = n <= 8000 ? 3 : 1;
    double a_ib, b_ib, c_ib, d_ib;
    double a_sort, b_sort, c_sort, d_sort;
    const double a = bench::TimeWithPhases(
        ec, [&] { return TriangleCombinatorial(db, &ec); }, reps, &a_ib,
        &a_sort);
    const double b = bench::TimeWithPhases(
        ec,
        [&] {
          return TriangleMm(db, 2.371552, MmKernel::kBoolean, nullptr, &ec);
        },
        reps, &b_ib, &b_sort);
    const double c = bench::TimeWithPhases(
        ec,
        [&] {
          return TriangleMm(db, 2.8073549, MmKernel::kStrassen, nullptr,
                            &ec);
        },
        reps, &c_ib, &c_sort);
    const double d = bench::TimeWithPhases(
        ec,
        [&] {
          return PandaTriangleBoolean(db, 2.371552, MmKernel::kBoolean,
                                      nullptr, &ec);
        },
        reps, &d_ib, &d_sort);
    ns.push_back(static_cast<double>(db.TotalSize()));
    t_wcoj.push_back(a);
    t_mm2.push_back(b);
    t_mmstr.push_back(c);
    t_panda.push_back(d);
    const long long total = static_cast<long long>(db.TotalSize());
    std::printf("%10lld %12.5f %12.5f %12.5f %12.5f\n", total, a, b, c, d);
    bench::Json("triangle", total, "wcoj", a * 1e3, a_ib, a_sort);
    bench::Json("triangle", total, "mm_w2.37", b * 1e3, b_ib, b_sort);
    bench::Json("triangle", total, "mm_strassen", c * 1e3, c_ib, c_sort);
    bench::Json("triangle", total, "panda", d * 1e3, d_ib, d_sort);
  }
  std::printf("\n");
  bench::Row("combinatorial exponent", "1.5000",
             bench::Fmt(bench::FitSlope(ns, t_wcoj)), "fitted");
  bench::Row("MM hybrid exponent (w=2.3716)", "1.4068",
             bench::Fmt(bench::FitSlope(ns, t_mm2)),
             "fitted; 2w/(w+1)");
  bench::Row("MM hybrid exponent (Strassen)", "1.4750",
             bench::Fmt(bench::FitSlope(ns, t_mmstr)),
             "fitted; 2w/(w+1) at w=log2 7");
  bench::Row("proof-seq-derived exponent", "1.4068",
             bench::Fmt(bench::FitSlope(ns, t_panda)), "fitted");
}

}  // namespace
}  // namespace fmmsw

int main(int argc, char** argv) {
  fmmsw::bench::Init(argc, argv);
  fmmsw::Run();
  return 0;
}
