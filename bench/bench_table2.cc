// E2 + E11 — Table 2: subw and w-subw per query class, each computed from
// scratch by the LP machinery and compared against the Appendix-C closed
// forms; plus verification that the Figure 2-4 witness polymatroids are
// valid, edge-dominated, and attain the widths.

#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "entropy/witnesses.h"
#include "hypergraph/hypergraph.h"
#include "width/closed_forms.h"
#include "width/omega_subw.h"
#include "width/subw.h"

namespace fmmsw {
namespace {

namespace cf = closed_forms;

const char* Mark(bool ok) { return ok ? "MATCH" : "MISMATCH"; }

// Planner-counter columns shared by every LP-computed row.
std::string Planner(long lps, long warm, int64_t plan_ns) {
  char buf[112];
  std::snprintf(buf, sizeof(buf),
                "lps_solved=%ld lp_warm_starts=%ld plan_ms=%.2f", lps, warm,
                static_cast<double>(plan_ns) * 1e-6);
  return buf;
}

std::string Planner(const OmegaSubwResult& r) {
  return Planner(r.lps_solved, r.lp_warm_starts, r.plan_ns);
}

void SubwRows() {
  bench::Header("Table 2, column 'Submodular Width' (exact LP)");
  struct Case {
    const char* name;
    Hypergraph h;
    Rational expect;
  };
  const Case cases[] = {
      {"triangle", Hypergraph::Triangle(), cf::SubwTriangle()},
      {"4-clique", Hypergraph::Clique(4), cf::SubwClique(4)},
      {"5-clique", Hypergraph::Clique(5), cf::SubwClique(5)},
      {"6-clique", Hypergraph::Clique(6), cf::SubwClique(6)},
      {"4-cycle", Hypergraph::Cycle(4), cf::SubwCycle(4)},
      {"5-cycle", Hypergraph::Cycle(5), cf::SubwCycle(5)},
      {"6-cycle", Hypergraph::Cycle(6), cf::SubwCycle(6)},
      {"3-pyramid", Hypergraph::Pyramid(3), cf::SubwPyramid(3)},
      {"4-pyramid", Hypergraph::Pyramid(4), cf::SubwPyramid(4)},
      {"Lemma C.15", Hypergraph::LemmaC15(), cf::SubwLemmaC15()},
  };
  for (const Case& c : cases) {
    auto r = SubmodularWidth(c.h);
    bench::Row(c.name, c.expect.ToString(), r.value.ToString(),
               std::string(Mark(r.value == c.expect)) + "  " +
                   Planner(r.lps_solved, r.lp_warm_starts, r.plan_ns));
  }
}

void OmegaSubwRows(const Rational& omega) {
  std::printf("\n");
  bench::Header("Table 2, column 'w-Submodular Width' at omega = " +
                omega.ToString());
  {
    auto r = OmegaSubw(Hypergraph::Triangle(), omega);
    const Rational expect = cf::OmegaSubwTriangle(omega);
    bench::Row("triangle", expect.ToString(), r.value.ToString(),
               std::string(Mark(r.exact && r.value == expect)) + "  " +
                   Planner(r));
  }
  {
    auto r = OmegaSubw(Hypergraph::Clique(4), omega);
    const Rational expect = cf::OmegaSubwClique4(omega);
    bench::Row("4-clique", expect.ToString(), r.value.ToString(),
               std::string(Mark(r.exact && r.value == expect)) + " (" +
                   std::to_string(r.num_mm_terms) + " MM terms)  " +
                   Planner(r));
  }
  {
    auto r = OmegaSubw(Hypergraph::Clique(5), omega);
    const Rational expect = cf::OmegaSubwClique5(omega);
    bench::Row("5-clique", expect.ToString(), r.value.ToString(),
               std::string(Mark(r.exact && r.value == expect)) + "  " +
                   Planner(r));
  }
  bench::Row("k-clique k=7 (closed form)",
             cf::OmegaSubwClique(7, omega).ToString(),
             cf::OmegaSubwClique(7, omega).ToString(), "Lemma C.8");
  {
    // 4-cycle: not clustered; certified bounds + witness lower bound.
    OmegaSubwOptions opts;
    opts.witnesses.push_back(FourCycleWitnessHigh());
    if (omega <= Rational(5, 2)) {
      opts.witnesses.push_back(FourCycleWitnessLow(omega));
    }
    auto r = OmegaSubw(Hypergraph::Cycle(4), omega, opts);
    const Rational expect = cf::OmegaSubwCycle4(omega);
    std::string note = "lower ";
    note += Mark(r.lower == expect);
    note += " (witness-certified)  ";
    note += Planner(r);
    bench::Row("4-cycle", expect.ToString(),
               "[" + r.lower.ToString() + ", " + r.upper.ToString() + "]",
               note);
  }
  {
    auto r = OmegaSubw(Hypergraph::Pyramid(3), omega);
    const Rational expect = cf::OmegaSubwPyramid3(omega);
    bench::Row("3-pyramid", expect.ToString(), r.value.ToString(),
               std::string(Mark(r.exact && r.value == expect)) + "  " +
                   Planner(r));
  }
  bench::Row("k-pyramid k=5 (upper bound)",
             cf::OmegaSubwPyramidUpper(5, omega).ToString(),
             cf::OmegaSubwPyramidUpper(5, omega).ToString(), "Lemma C.14");
  {
    auto r = OmegaSubw(Hypergraph::LemmaC15(), omega);
    const Rational bound = cf::OmegaSubwLemmaC15Upper(omega);
    bench::Row("Lemma C.15", "<= " + bound.ToString(), r.value.ToString(),
               (r.value <= bound ? std::string("WITHIN BOUND (exact value!)")
                                 : std::string("EXCEEDS BOUND")) +
                   "  " + Planner(r));
  }
}

void WitnessRows(const Rational& omega) {
  std::printf("\n");
  bench::Header("Figures 2-4: witness polymatroids at omega = " +
                omega.ToString());
  {
    auto h = TriangleWitness(omega);
    const bool ok = IsPolymatroid(h) &&
                    IsEdgeDominated(Hypergraph::Triangle(), h);
    bench::Row("Fig 2 (triangle)", "valid + attains 2w/(w+1)",
               ok ? "valid" : "INVALID",
               "attains " +
                   WidthAt(Hypergraph::Triangle(), h, omega).ToString());
  }
  {
    auto h = FourCycleWitnessHigh();
    const bool ok =
        IsPolymatroid(h) && IsEdgeDominated(Hypergraph::Cycle(4), h);
    bench::Row("Fig 3 (4-cycle, w>=5/2)", "valid + attains 3/2",
               ok ? "valid" : "INVALID",
               "attains " +
                   WidthAt(Hypergraph::Cycle(4), h, Rational(5, 2))
                       .ToString());
  }
  {
    auto h = Pyramid3Witness(omega);
    const bool ok =
        IsPolymatroid(h) && IsEdgeDominated(Hypergraph::Pyramid(3), h);
    bench::Row("Fig 4 (3-pyramid)", "valid + attains 2-1/w",
               ok ? "valid" : "INVALID",
               "attains " +
                   WidthAt(Hypergraph::Pyramid(3), h, omega).ToString());
  }
}

}  // namespace
}  // namespace fmmsw

int main() {
  fmmsw::SubwRows();
  for (const fmmsw::Rational& omega :
       {fmmsw::Rational(2), fmmsw::Rational(2371552, 1000000),
        fmmsw::Rational(3)}) {
    fmmsw::OmegaSubwRows(omega);
  }
  fmmsw::WitnessRows(fmmsw::Rational(2371552, 1000000));
  return 0;
}
