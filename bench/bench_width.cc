// E13 — the planner plane as a workload: subw and w-subw over the
// Table 1/2 hypergraph families, warm-started vs cold simplex, the
// step-digest keyed caches, and the process-wide width cache.
//
// Every row reports the planner counters next to the wall time:
// lps_solved / lp_warm_starts / lp_pivots / plan_ms. The cold-vs-warm
// A/B asserts value equality (the simplex canonicalizes its optima, so
// warm starting cannot change the answer) and prints the pivot
// reduction. --json emits one line per measurement for BENCH_*.json.

#include <cstdint>
#include <cstdio>
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "entropy/witnesses.h"
#include "core/api.h"
#include "hypergraph/hypergraph.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "width/omega_subw.h"
#include "width/subw.h"
#include "width/width_cache.h"

namespace {

using namespace fmmsw;

const Rational kOmega(2371552, 1000000);  // 2.371552

std::string Counters(long lps, long warm, long piv, int64_t plan_ns) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"lps_solved\":%ld,\"lp_warm_starts\":%ld,"
                "\"lp_pivots\":%ld,\"plan_ms\":%.3f",
                lps, warm, piv, static_cast<double>(plan_ns) * 1e-6);
  return buf;
}

std::string Note(double ms, long lps, long warm, long piv) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%8.2f ms  lps=%-6ld warm=%-6ld piv=%ld",
                ms, lps, warm, piv);
  return buf;
}

OmegaSubwOptions Opts(bool warm) {
  OmegaSubwOptions o;
  o.warm_start = warm;
  o.use_width_cache = false;  // honest timings: never serve from the cache
  return o;
}

// --- subw rows --------------------------------------------------------

void SubwRows() {
  struct Case {
    const char* name;
    Hypergraph h;
    int reps;
  };
  const std::vector<Case> cases = {
      {"triangle", Hypergraph::Triangle(), 20},
      {"cycle4", Hypergraph::Cycle(4), 10},
      {"clique4", Hypergraph::Clique(4), 5},
      {"clique5", Hypergraph::Clique(5), 1},
      {"cycle5", Hypergraph::Cycle(5), 1},
      {"cycle6", Hypergraph::Cycle(6), 1},
      {"pyramid4", Hypergraph::Pyramid(4), 1},
      {"lemmaC15", Hypergraph::LemmaC15(), 1},
  };
  bench::Header("subw(H): exact submodular width (warm-started LP tower)");
  for (const Case& c : cases) {
    const long long n = c.h.vertices().size();
    if (!bench::StepEnabled(n)) continue;
    SubwResult r;
    Stopwatch sw;
    for (int i = 0; i < c.reps; ++i) r = SubmodularWidth(c.h);
    const double ms = sw.Seconds() * 1000.0 / c.reps;
    bench::Row(std::string("subw ") + c.name, "-", r.value.ToString(),
               Note(ms, r.lps_solved, r.lp_warm_starts, r.lp_pivots));
    bench::Json(c.name, n, "subw", ms, -1, -1,
                Counters(r.lps_solved, r.lp_warm_starts, r.lp_pivots,
                         r.plan_ns));
  }
}

// --- w-subw rows, warm vs cold ---------------------------------------

void OmegaSubwRows() {
  struct Case {
    const char* name;
    Hypergraph h;
    int reps;
    bool cold_ab;  // also run the cold-start A/B for this shape
    std::vector<SetFn<Rational>> witnesses;
  };
  std::vector<Case> cases = {
      {"triangle", Hypergraph::Triangle(), 10, true, {}},
      {"clique4", Hypergraph::Clique(4), 5, true, {}},
      {"pyramid3", Hypergraph::Pyramid(3), 5, true, {}},
      {"clique5", Hypergraph::Clique(5), 1, true, {}},
      {"pyramid4", Hypergraph::Pyramid(4), 1, false, {}},
      {"lemmaC15", Hypergraph::LemmaC15(), 1, false, {}},
      {"cycle4", Hypergraph::Cycle(4), 1, false,
       {FourCycleWitnessLow(kOmega), FourCycleWitnessHigh()}},
      {"cycle5", Hypergraph::Cycle(5), 1, false, {}},
  };
  bench::Header("w-subw(H): warm-started vs cold LPs (values must agree)");
  for (const Case& c : cases) {
    const long long n = c.h.vertices().size();
    if (!bench::StepEnabled(n)) continue;

    OmegaSubwOptions warm = Opts(true);
    warm.witnesses = c.witnesses;
    OmegaSubwResult rw;
    Stopwatch sw;
    for (int i = 0; i < c.reps; ++i) rw = OmegaSubw(c.h, kOmega, warm);
    const double warm_ms = sw.Seconds() * 1000.0 / c.reps;
    bench::Row(std::string("osubw ") + c.name + " warm", "-",
               rw.value.ToString(),
               Note(warm_ms, rw.lps_solved, rw.lp_warm_starts, rw.lp_pivots));
    bench::Json(c.name, n, "osubw-warm", warm_ms, -1, -1,
                Counters(rw.lps_solved, rw.lp_warm_starts, rw.lp_pivots,
                         rw.plan_ns));

    if (!c.cold_ab) continue;
    OmegaSubwOptions cold = Opts(false);
    cold.witnesses = c.witnesses;
    OmegaSubwResult rc;
    Stopwatch sc;
    for (int i = 0; i < c.reps; ++i) rc = OmegaSubw(c.h, kOmega, cold);
    const double cold_ms = sc.Seconds() * 1000.0 / c.reps;
    const bool match = rc.value == rw.value && rc.lower == rw.lower &&
                       rc.upper == rw.upper;
    char note[224];
    std::snprintf(note, sizeof(note), "%s  piv %ld -> %ld (%.1fx fewer)",
                  Note(cold_ms, rc.lps_solved, rc.lp_warm_starts,
                       rc.lp_pivots)
                      .c_str(),
                  rc.lp_pivots, rw.lp_pivots,
                  rw.lp_pivots > 0 ? static_cast<double>(rc.lp_pivots) /
                                         static_cast<double>(rw.lp_pivots)
                                   : 0.0);
    bench::Row(std::string("osubw ") + c.name + " cold", "-",
               match ? "MATCH" : "MISMATCH", note);
    bench::Json(c.name, n, "osubw-cold", cold_ms, -1, -1,
                Counters(rc.lps_solved, rc.lp_warm_starts, rc.lp_pivots,
                         rc.plan_ns));
  }
}

// --- the mechanical algorithm (Example D.1 full enumeration) ----------

void FullEnumerationRow() {
  if (!bench::StepEnabled(4)) return;
  OmegaSubwOptions full = Opts(true);
  full.full_enumeration = true;
  Stopwatch sw;
  OmegaSubwResult r = OmegaSubwClustered(Hypergraph::Clique(4), kOmega, full);
  const double ms = sw.Seconds() * 1000.0;
  bench::Header("Example D.1: 4-clique full enumeration (3^10 LP family)");
  bench::Row("osubw clique4 full-enum", "59049 LPs",
             std::to_string(r.lps_solved) + " LPs",
             Note(ms, r.lps_solved, r.lp_warm_starts, r.lp_pivots));
  bench::Json("clique4_full", 4, "osubw-full", ms, -1, -1,
              Counters(r.lps_solved, r.lp_warm_starts, r.lp_pivots,
                       r.plan_ns));
}

// --- the process-wide width cache ------------------------------------

void WidthCacheRows() {
  if (!bench::StepEnabled(4)) return;
  bench::Header("WidthCache: repeated plans over the same query shape");
  WidthCache::Global().Clear();
  OmegaSubwOptions opts;  // cache ON (the default)
  Stopwatch miss;
  OmegaSubwResult r1 = OmegaSubw(Hypergraph::Clique(4), kOmega, opts);
  const double miss_ms = miss.Seconds() * 1000.0;
  Stopwatch hit;
  OmegaSubwResult r2 = OmegaSubw(Hypergraph::Clique(4), kOmega, opts);
  const double hit_ms = hit.Seconds() * 1000.0;
  bench::Row("osubw clique4 1st (miss)", "-",
             r1.from_cache ? "from_cache" : "computed",
             Note(miss_ms, r1.lps_solved, r1.lp_warm_starts, r1.lp_pivots));
  bench::Row("osubw clique4 2nd (hit)", "-",
             r2.from_cache ? "from_cache" : "computed",
             bench::Fmt(hit_ms) + " ms  (" +
                 bench::Fmt(miss_ms / (hit_ms > 0 ? hit_ms : 1e-9)) +
                 "x faster)");
  bench::Json("clique4_cache", 4, "width-cache-miss", miss_ms, -1, -1,
              Counters(r1.lps_solved, r1.lp_warm_starts, r1.lp_pivots,
                       r1.plan_ns));
  bench::Json("clique4_cache", 4, "width-cache-hit", hit_ms);
  WidthCache::Global().Clear();
}

// --- ComputeWidths end to end ----------------------------------------

void ComputeWidthsRows() {
  struct Case {
    const char* name;
    Hypergraph h;
    int reps;
  };
  const std::vector<Case> cases = {
      {"triangle", Hypergraph::Triangle(), 10},
      {"cycle4", Hypergraph::Cycle(4), 5},
  };
  bench::Header("ComputeWidths: rho* + fhtw + subw + w-subw in one call");
  for (const Case& c : cases) {
    const long long n = c.h.vertices().size();
    if (!bench::StepEnabled(n)) continue;
    OmegaSubwOptions opts = Opts(true);
    WidthReport r;
    Stopwatch sw;
    for (int i = 0; i < c.reps; ++i) r = ComputeWidths(c.h, kOmega, opts);
    const double ms = sw.Seconds() * 1000.0 / c.reps;
    bench::Row(std::string("widths ") + c.name, "-",
               "subw=" + r.subw.ToString(),
               Note(ms, r.lps_solved, r.lp_warm_starts, r.lp_pivots));
    bench::Json(c.name, n, "widths", ms, -1, -1,
                Counters(r.lps_solved, r.lp_warm_starts, r.lp_pivots,
                         r.plan_ns));
  }
}

// --- StepKey micro-benchmark -----------------------------------------
//
// The planner's per-step caches used to key on a materialized
// std::vector<uint32_t> (before-mask, block-mask, sorted incident edge
// masks) in a std::map. The refactor keys on an incrementally folded
// 128-bit digest in an unordered_map — no allocation, no sort, O(1)
// probes. This micro-benchmark replays the same synthetic step stream
// through both keying schemes.

uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct SynthStep {
  uint32_t before = 0;
  uint32_t block = 0;
  std::vector<uint32_t> edges;  // unsorted, as the walk discovers them
};

std::vector<SynthStep> MakeSteps(int count) {
  std::vector<SynthStep> steps;
  steps.reserve(count);
  uint64_t state = 0x5eed5eed5eed5eedull;
  auto next = [&state]() { return state = SplitMix(state); };
  for (int i = 0; i < count; ++i) {
    SynthStep s;
    s.before = static_cast<uint32_t>(next() & 0xffff);
    s.block = static_cast<uint32_t>(next() & 0xffff);
    const int ne = 3 + static_cast<int>(next() % 6);
    for (int e = 0; e < ne; ++e) {
      s.edges.push_back(static_cast<uint32_t>(next() & 0xffff));
    }
    steps.push_back(std::move(s));
  }
  return steps;
}

struct Digest {
  uint64_t a = 0, b = 0;
  bool operator==(const Digest& o) const { return a == o.a && b == o.b; }
};
struct DigestHash {
  size_t operator()(const Digest& d) const { return d.a; }
};

void StepKeyRows() {
  const int kSteps = 4096;
  const int kPasses = 64;
  if (!bench::StepEnabled(kSteps)) return;
  const std::vector<SynthStep> steps = MakeSteps(kSteps);

  // Scheme A: materialize + sort a vector key per lookup, std::map.
  std::map<std::vector<uint32_t>, int> vec_map;
  long long vec_sink = 0;
  Stopwatch sa;
  for (int p = 0; p < kPasses; ++p) {
    for (const SynthStep& s : steps) {
      std::vector<uint32_t> key;
      key.reserve(2 + s.edges.size());
      key.push_back(s.before);
      key.push_back(s.block);
      std::vector<uint32_t> es = s.edges;
      std::sort(es.begin(), es.end());
      key.insert(key.end(), es.begin(), es.end());
      auto [it, fresh] =
          vec_map.try_emplace(std::move(key), static_cast<int>(vec_map.size()));
      vec_sink += it->second + (fresh ? 1 : 0);
    }
  }
  const double vec_ms = sa.Seconds() * 1000.0 / kPasses;

  // Scheme B: fold an order-independent 128-bit digest, unordered_map.
  std::unordered_map<Digest, int, DigestHash> dig_map;
  dig_map.reserve(kSteps * 2);
  long long dig_sink = 0;
  Stopwatch sb;
  for (int p = 0; p < kPasses; ++p) {
    for (const SynthStep& s : steps) {
      Digest d;
      d.a = SplitMix(s.before) + SplitMix(static_cast<uint64_t>(s.block) << 32);
      d.b = SplitMix(d.a);
      for (uint32_t e : s.edges) {
        d.a += SplitMix(e);  // commutative: walk order cannot matter
        d.b += SplitMix(static_cast<uint64_t>(e) ^ 0xc2b2ae3d27d4eb4full);
      }
      auto [it, fresh] =
          dig_map.try_emplace(d, static_cast<int>(dig_map.size()));
      dig_sink += it->second + (fresh ? 1 : 0);
    }
  }
  const double dig_ms = sb.Seconds() * 1000.0 / kPasses;

  bench::Header("StepKey: vector-keyed map vs incremental 128-bit digest");
  FMMSW_CHECK(vec_sink == dig_sink);  // both schemes saw identical streams
  bench::Row("vector key + std::map", "-", bench::Fmt(vec_ms) + " ms/pass",
             std::to_string(vec_map.size()) + " distinct steps");
  bench::Row("digest key + flat hash", "-", bench::Fmt(dig_ms) + " ms/pass",
             bench::Fmt(vec_ms / (dig_ms > 0 ? dig_ms : 1e-9)) + "x faster");
  bench::Json("stepkey", kSteps, "stepkey-vector", vec_ms);
  bench::Json("stepkey", kSteps, "stepkey-digest", dig_ms);
}

}  // namespace

int main(int argc, char** argv) {
  fmmsw::bench::Init(argc, argv);
  SubwRows();
  OmegaSubwRows();
  FullEnumerationRow();
  WidthCacheRows();
  ComputeWidthsRows();
  StepKeyRows();
  return 0;
}
